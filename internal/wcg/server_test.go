package wcg

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/workunit"
)

func newTestServer(cfg Config) (*sim.Engine, *Server) {
	engine := sim.NewEngine()
	return engine, NewServer(engine, cfg)
}

func q1Config() Config {
	return Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 10 * sim.Day}
}

func wu(id int64, secs float64) workunit.Workunit {
	return workunit.Workunit{ID: id, ISepLo: 1, ISepHi: 5, RefSeconds: secs}
}

func TestSingleWorkunitLifecycle(t *testing.T) {
	engine, srv := newTestServer(q1Config())
	srv.AddWorkunit(wu(1, 100), 0)
	if !srv.HasWork() {
		t.Fatal("server should have work")
	}
	a := srv.RequestWork()
	if a == nil {
		t.Fatal("no assignment")
	}
	if srv.HasWork() {
		t.Fatal("single quorum-1 workunit should be exhausted once assigned")
	}
	if srv.RequestWork() != nil {
		t.Fatal("second request should find nothing")
	}
	srv.Complete(a, OutcomeValid, 400)
	if srv.Stats.Completed != 1 || srv.Stats.Useful != 1 {
		t.Fatalf("stats: %+v", srv.Stats)
	}
	if srv.Stats.CPUSeconds != 400 {
		t.Fatalf("cpu = %v", srv.Stats.CPUSeconds)
	}
	_ = engine
}

func TestQuorum2NeedsTwoResults(t *testing.T) {
	cfg := Config{InitialQuorum: 2, SteadyQuorum: 2, Deadline: 10 * sim.Day}
	_, srv := newTestServer(cfg)
	srv.AddWorkunit(wu(1, 100), 0)
	a1 := srv.RequestWork()
	a2 := srv.RequestWork()
	if a1 == nil || a2 == nil {
		t.Fatal("quorum-2 should hand out two copies")
	}
	if srv.RequestWork() != nil {
		t.Fatal("no third copy while two are out")
	}
	srv.Complete(a1, OutcomeValid, 100)
	if srv.Stats.Completed != 0 {
		t.Fatal("one result must not complete a quorum-2 workunit")
	}
	srv.Complete(a2, OutcomeValid, 100)
	if srv.Stats.Completed != 1 {
		t.Fatal("two results should complete")
	}
	if srv.Stats.Useful != 2 {
		t.Fatalf("both quorum results are useful: %+v", srv.Stats)
	}
	if got := srv.Stats.RedundancyFactor(); got != 2 {
		t.Fatalf("redundancy = %v, want 2", got)
	}
}

func TestQuorumSwitch(t *testing.T) {
	cfg := Config{InitialQuorum: 2, SteadyQuorum: 1, QuorumSwitchTime: 100, Deadline: 10 * sim.Day}
	engine, srv := newTestServer(cfg)
	srv.AddWorkunit(wu(1, 10), 0)
	a1 := srv.RequestWork()
	a2 := srv.RequestWork()
	if a1 == nil || a2 == nil {
		t.Fatal("early era should replicate")
	}
	// Move past the switch; one valid result now suffices.
	engine.RunUntil(200)
	srv.Complete(a1, OutcomeValid, 10)
	if srv.Stats.Completed != 1 {
		t.Fatal("steady-era quorum 1 should complete with one result")
	}
	// The second copy comes back late-ish: counted but wasted.
	srv.Complete(a2, OutcomeValid, 10)
	if srv.Stats.Wasted != 1 {
		t.Fatalf("wasted = %d", srv.Stats.Wasted)
	}
}

func TestInvalidResultReissued(t *testing.T) {
	_, srv := newTestServer(q1Config())
	srv.AddWorkunit(wu(1, 100), 0)
	a := srv.RequestWork()
	srv.Complete(a, OutcomeInvalid, 50)
	if srv.Stats.Invalid != 1 {
		t.Fatalf("invalid = %d", srv.Stats.Invalid)
	}
	if srv.Stats.Completed != 0 {
		t.Fatal("invalid result must not complete")
	}
	if !srv.HasWork() {
		t.Fatal("workunit should be back in the queue")
	}
	b := srv.RequestWork()
	if b == nil {
		t.Fatal("reissue failed")
	}
	srv.Complete(b, OutcomeValid, 120)
	if srv.Stats.Completed != 1 {
		t.Fatal("not completed after reissue")
	}
	if srv.Stats.WastedSeconds != 50 {
		t.Fatalf("wasted seconds = %v", srv.Stats.WastedSeconds)
	}
}

func TestTimeoutReissuesAndLateCounts(t *testing.T) {
	engine, srv := newTestServer(q1Config())
	srv.AddWorkunit(wu(1, 100), 0)
	a := srv.RequestWork()
	// Let the deadline pass.
	engine.RunUntil(11 * sim.Day)
	if srv.Stats.TimedOut != 1 {
		t.Fatalf("timeouts = %d", srv.Stats.TimedOut)
	}
	b := srv.RequestWork()
	if b == nil {
		t.Fatal("no replacement copy after timeout")
	}
	if srv.Stats.Sent != 2 {
		t.Fatalf("sent = %d", srv.Stats.Sent)
	}
	srv.Complete(b, OutcomeValid, 100)
	if srv.Stats.Completed != 1 {
		t.Fatal("replacement did not complete")
	}
	// The original copy finally returns: accepted, counted as wasted.
	srv.Complete(a, OutcomeValid, 300)
	if srv.Stats.Wasted != 1 || srv.Stats.Received != 2 {
		t.Fatalf("late return handling: %+v", srv.Stats)
	}
	if got := srv.Stats.RedundancyFactor(); got != 2 {
		t.Fatalf("redundancy = %v", got)
	}
	if got := srv.Stats.UsefulFraction(); got != 0.5 {
		t.Fatalf("useful fraction = %v", got)
	}
}

func TestLateResultCanStillValidate(t *testing.T) {
	// If the workunit is not yet completed when a timed-out copy returns,
	// the late result validates it (the paper: reconnecting agents' results
	// "taken into account").
	engine, srv := newTestServer(q1Config())
	srv.AddWorkunit(wu(1, 100), 0)
	a := srv.RequestWork()
	engine.RunUntil(11 * sim.Day) // a times out, replacement queued
	if b := srv.RequestWork(); b == nil {
		t.Fatal("expected replacement available")
	}
	// Replacement is out but slow; the original comes back first.
	srv.Complete(a, OutcomeValid, 500)
	if srv.Stats.Completed != 1 {
		t.Fatal("late result should complete the workunit")
	}
}

func TestOnCompleteCallback(t *testing.T) {
	_, srv := newTestServer(q1Config())
	var got []int64
	srv.OnComplete = func(st *WUState) { got = append(got, st.WU.ID) }
	srv.AddWorkunit(wu(7, 10), 3)
	a := srv.RequestWork()
	srv.Complete(a, OutcomeValid, 10)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("callback got %v", got)
	}
}

func TestOnWeekCPU(t *testing.T) {
	engine, srv := newTestServer(q1Config())
	weekly := map[int]float64{}
	srv.OnWeekCPU = func(week int, cpu float64) { weekly[week] += cpu }
	srv.AddWorkunit(wu(1, 10), 0)
	srv.AddWorkunit(wu(2, 10), 0)
	a := srv.RequestWork()
	srv.Complete(a, OutcomeValid, 100)
	engine.RunUntil(8 * sim.Day) // into week 1
	b := srv.RequestWork()
	srv.Complete(b, OutcomeValid, 200)
	if weekly[0] != 100 || weekly[1] != 200 {
		t.Fatalf("weekly cpu = %v", weekly)
	}
}

func TestFIFOOrder(t *testing.T) {
	_, srv := newTestServer(q1Config())
	for i := int64(0); i < 5; i++ {
		srv.AddWorkunit(wu(i, 10), 0)
	}
	for i := int64(0); i < 5; i++ {
		a := srv.RequestWork()
		if a.WU.WU.ID != i {
			t.Fatalf("got WU %d, want %d", a.WU.WU.ID, i)
		}
	}
}

func TestPendingCount(t *testing.T) {
	_, srv := newTestServer(q1Config())
	for i := int64(0); i < 4; i++ {
		srv.AddWorkunit(wu(i, 10), 0)
	}
	if srv.PendingCount() != 4 {
		t.Fatalf("pending = %d", srv.PendingCount())
	}
	a := srv.RequestWork()
	if srv.PendingCount() != 3 {
		t.Fatalf("pending after assign = %d", srv.PendingCount())
	}
	srv.Complete(a, OutcomeValid, 10)
	if srv.PendingCount() != 3 {
		t.Fatalf("pending after complete = %d", srv.PendingCount())
	}
}

func TestQueueCompaction(t *testing.T) {
	// Push enough workunits through to trigger compaction and verify
	// nothing is lost.
	_, srv := newTestServer(q1Config())
	const n = 5000
	for i := int64(0); i < n; i++ {
		srv.AddWorkunit(wu(i, 1), 0)
	}
	for i := 0; i < n; i++ {
		a := srv.RequestWork()
		if a == nil {
			t.Fatalf("ran out of work at %d", i)
		}
		srv.Complete(a, OutcomeValid, 1)
	}
	if srv.Stats.Completed != n {
		t.Fatalf("completed %d of %d", srv.Stats.Completed, n)
	}
	if srv.RequestWork() != nil {
		t.Fatal("queue should be empty")
	}
}

func TestStatsAccounting(t *testing.T) {
	// The paper's numbers: 5,418,010 results received for 3,936,010
	// distinct workunits ⇒ redundancy 1.37, useful fraction 73 %.
	s := Stats{Sent: 5418010, Completed: 3936010, Received: 5418010}
	if math.Abs(s.RedundancyFactor()-1.3765) > 1e-3 {
		t.Fatalf("redundancy = %v", s.RedundancyFactor())
	}
	if math.Abs(s.UsefulFraction()-0.7265) > 1e-3 {
		t.Fatalf("useful = %v", s.UsefulFraction())
	}
	var zero Stats
	if zero.RedundancyFactor() != 0 || zero.UsefulFraction() != 0 {
		t.Fatal("zero stats should report 0")
	}
}

func TestServerString(t *testing.T) {
	_, srv := newTestServer(q1Config())
	if srv.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestConfigValidation(t *testing.T) {
	engine := sim.NewEngine()
	for i, cfg := range []Config{
		{InitialQuorum: 0, SteadyQuorum: 1, Deadline: 1},
		{InitialQuorum: 1, SteadyQuorum: 0, Deadline: 1},
		{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			NewServer(engine, cfg)
		}()
	}
}

func TestCompleteNilPanics(t *testing.T) {
	_, srv := newTestServer(q1Config())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	srv.Complete(nil, OutcomeValid, 0)
}

func BenchmarkServerThroughput(b *testing.B) {
	engine, srv := newTestServer(q1Config())
	for i := int64(0); i < int64(b.N); i++ {
		srv.AddWorkunit(wu(i, 1), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := srv.RequestWork()
		srv.Complete(a, OutcomeValid, 1)
	}
	_ = engine
}
