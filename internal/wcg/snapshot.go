package wcg

import (
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/slab"
	"repro/internal/snapshot"
)

// wheelSnap captures one deadline class's mutable ring state; the class's
// deadline and drain closure are fixed at bind time.
type wheelSnap struct {
	dlq    snapshot.Slice[*Assignment]
	dlHead int
	armed  bool
}

// ServerSnapshot captures a Server at an event boundary so a what-if
// suffix can run on it and the server can then be restored byte-exactly
// (see the snapshot package doc for the model and the slice rule).
//
// What is copied: the config (by value), work queue, batch buckets,
// deadline rings, trust streaks, outage spool, scheduler rng, counters,
// stats and completion hooks — plus the WUState and Assignment arenas,
// chunk-wise, which preserves the identity of every *WUState/*Assignment
// pointer held by queues, wheels, hosts or in-flight events. What is
// shared, not copied: the outage-window schedule (immutable during a
// run; only its header and cursor are saved) and everything resolved at
// policy-bind time (scheduler/validator/deadline method values, class
// tables, wheel count, drain closures) — a fork must not change those,
// which Server.ApplyConfig documents and the experiment layer enforces.
//
// Snapshot requires the retained-arena mode (Retain/Reset): the one-shot
// slab.Carve mode hands chunks to the GC as it goes and cannot be
// rewound. Capture panics otherwise.
type ServerSnapshot struct {
	cfg  Config
	proj uint8

	queue snapshot.Slice[*WUState]
	qHead int

	schedRand rng.Source

	buckets    snapshot.Slice[[]*WUState]
	bucketData []snapshot.Slice[*WUState]
	bucketHead snapshot.Slice[int]
	minBucket  int
	batchRank  snapshot.Slice[int]
	nextRank   int

	nQueuedLive, nNeedy, qCache int

	wheels []wheelSnap

	adStreak snapshot.Slice[int]

	outages []OutageWindow
	outIdx  int

	spool      snapshot.Slice[spooled]
	spoolArmed bool

	wuArena slab.ArenaSnapshot[WUState]
	asArena slab.ArenaSnapshot[Assignment]
	wuNext  int32
	asNext  int32

	stats Stats

	onComplete     func(*WUState)
	onWeekCPU      func(week int, cpuSeconds float64)
	onQuorumSwitch func(at sim.Time, from, to int)
}

// Capture records s's complete mutable state. s must be in retained
// (pooled) allocation mode.
func (snap *ServerSnapshot) Capture(s *Server) {
	if !s.retain {
		panic("wcg: ServerSnapshot requires a retained (pooled) server — call Retain before the run")
	}
	snap.cfg = s.cfg
	snap.proj = s.proj

	snap.queue.Capture(s.queue)
	snap.qHead = s.qHead
	snap.schedRand = s.schedRand

	snap.buckets.Capture(s.buckets)
	for len(snap.bucketData) < len(s.buckets) {
		snap.bucketData = append(snap.bucketData, snapshot.Slice[*WUState]{})
	}
	for i := range s.buckets {
		snap.bucketData[i].Capture(s.buckets[i])
	}
	snap.bucketHead.Capture(s.bucketHead)
	snap.minBucket = s.minBucket
	snap.batchRank.Capture(s.batchRank)
	snap.nextRank = s.nextRank

	snap.nQueuedLive, snap.nNeedy, snap.qCache = s.nQueuedLive, s.nNeedy, s.qCache

	for len(snap.wheels) < len(s.wheels) {
		snap.wheels = append(snap.wheels, wheelSnap{})
	}
	snap.wheels = snap.wheels[:len(s.wheels)]
	for i := range s.wheels {
		w := &s.wheels[i]
		ws := &snap.wheels[i]
		ws.dlq.Capture(w.dlq)
		ws.dlHead = w.dlHead
		ws.armed = w.armed
	}

	snap.adStreak.Capture(s.adStreak)

	snap.outages = s.outages
	snap.outIdx = s.outIdx
	snap.spool.Capture(s.spool)
	snap.spoolArmed = s.spoolArmed

	snap.wuArena.Capture(&s.wuArena)
	snap.asArena.Capture(&s.asArena)
	snap.wuNext, snap.asNext = s.wuNext, s.asNext

	snap.stats = s.Stats
	snap.onComplete = s.OnComplete
	snap.onWeekCPU = s.OnWeekCPU
	snap.onQuorumSwitch = s.OnQuorumSwitch
}

// Restore rewinds s to the captured state. s must be the server the
// snapshot was captured from, not Reset since.
func (snap *ServerSnapshot) Restore(s *Server) {
	s.cfg = snap.cfg
	s.proj = snap.proj

	s.queue = snap.queue.Restore()
	s.qHead = snap.qHead
	s.schedRand = snap.schedRand

	for i := 0; i < snap.buckets.Len(); i++ {
		snap.bucketData[i].Restore()
	}
	s.buckets = snap.buckets.Restore()
	s.bucketHead = snap.bucketHead.Restore()
	s.minBucket = snap.minBucket
	s.batchRank = snap.batchRank.Restore()
	s.nextRank = snap.nextRank

	s.nQueuedLive, s.nNeedy, s.qCache = snap.nQueuedLive, snap.nNeedy, snap.qCache

	for i := range snap.wheels {
		w := &s.wheels[i]
		ws := &snap.wheels[i]
		w.dlq = ws.dlq.Restore()
		w.dlHead = ws.dlHead
		w.armed = ws.armed
	}

	s.adStreak = snap.adStreak.Restore()

	s.outages = snap.outages
	s.outIdx = snap.outIdx
	s.spool = snap.spool.Restore()
	s.spoolArmed = snap.spoolArmed

	snap.wuArena.Restore(&s.wuArena)
	snap.asArena.Restore(&s.asArena)
	s.wuNext, s.asNext = snap.wuNext, snap.asNext

	s.Stats = snap.stats
	s.OnComplete = snap.onComplete
	s.OnWeekCPU = snap.onWeekCPU
	s.OnQuorumSwitch = snap.onQuorumSwitch
}

// ApplyConfig swaps the configuration in force mid-run, at a fork point:
// after a snapshot restore, the forked cell's config replaces the shared
// prefix's before the suffix runs. Only fields whose effect is lazily
// read may differ from the config the prefix ran under — the quorum
// fields (refreshQuorum picks the change up at the next public entry,
// firing OnQuorumSwitch exactly as a straight run would) — and the
// outage schedule header is refreshed from the new config, which must
// describe the same windows. Everything resolved at bind time must be
// identical: Scheduler, Validator, DeadlinePolicy and Deadline are NOT
// re-bound here. The experiment layer's prefix grouping enforces these
// constraints on grouped scenarios.
func (s *Server) ApplyConfig(cfg Config) {
	checkConfig(cfg)
	s.cfg = cfg
	s.outages = cfg.Outages
}
