package wcg

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Tests for the deadline wheel and the O(1) counters: exact timeout
// timestamps, issue-order draining, lazily discarded returned copies, the
// mid-flight quorum switch completing workunits without further copies,
// and counter exactness against brute-force scans.

func TestDeadlineWheelExactTimestamp(t *testing.T) {
	engine, srv := newTestServer(q1Config())
	srv.AddWorkunit(wu(1, 100), 0)
	var a *Assignment
	engine.At(7, func() { a = srv.RequestWork() })
	due := 7 + srv.Deadline()
	engine.RunUntil(due - 1e-9)
	if srv.Stats.TimedOut != 0 {
		t.Fatal("timed out before the deadline")
	}
	engine.RunUntil(due)
	if srv.Stats.TimedOut != 1 {
		t.Fatalf("timeout did not fire at exactly IssuedAt+Deadline: %+v", srv.Stats)
	}
	_ = a
}

func TestDeadlineWheelIssueOrder(t *testing.T) {
	engine, srv := newTestServer(q1Config())
	for i := int64(0); i < 3; i++ {
		srv.AddWorkunit(wu(i, 100), 0)
	}
	var issued []sim.Time
	for i := 0; i < 3; i++ {
		i := i
		engine.At(float64(i)*sim.Hour, func() {
			a := srv.RequestWork()
			if a == nil {
				t.Errorf("no work at issue %d", i)
				return
			}
			issued = append(issued, engine.Now())
		})
	}
	var timeoutsAt []sim.Time
	prev := int64(0)
	engine.Every(0, sim.Minute, func(now sim.Time) {
		if srv.Stats.TimedOut > prev {
			for ; prev < srv.Stats.TimedOut; prev++ {
				timeoutsAt = append(timeoutsAt, now)
			}
		}
		if now > 20*sim.Day {
			t.Fatal("runaway")
		}
	})
	engine.RunUntil(12 * sim.Day)
	if len(timeoutsAt) != 3 {
		t.Fatalf("timeouts = %d, want 3", len(timeoutsAt))
	}
	for i, ts := range timeoutsAt {
		// The minute-resolution sampler sees each timeout within one tick
		// of its exact due time, in issue order.
		due := issued[i] + srv.Deadline()
		if ts < due || ts > due+sim.Minute {
			t.Fatalf("timeout %d observed at %v, due %v", i, ts, due)
		}
	}
}

func TestDeadlineWheelReturnedCopiesDiscarded(t *testing.T) {
	engine, srv := newTestServer(q1Config())
	const n = 50
	for i := int64(0); i < n; i++ {
		srv.AddWorkunit(wu(i, 100), 0)
	}
	for i := 0; i < n; i++ {
		a := srv.RequestWork()
		if a == nil {
			t.Fatalf("no work at %d", i)
		}
		srv.Complete(a, OutcomeValid, 10)
	}
	engine.RunUntil(30 * sim.Day)
	if srv.Stats.TimedOut != 0 {
		t.Fatalf("returned copies timed out: %+v", srv.Stats)
	}
	if w := &srv.wheels[0]; w.dlHead != len(w.dlq) {
		t.Fatalf("ring not drained: head %d of %d", w.dlHead, len(w.dlq))
	}
}

// TestQuorumLoweredMidFlightCompletes is the §5.1 switch corner: a workunit
// holding one valid return under quorum 2 completes via maybeComplete when
// the quorum drops to 1 — without a further copy being issued.
func TestQuorumLoweredMidFlightCompletes(t *testing.T) {
	cfg := Config{InitialQuorum: 2, SteadyQuorum: 1, QuorumSwitchTime: 20 * sim.Day, Deadline: 5 * sim.Day}
	engine, srv := newTestServer(cfg)
	srv.AddWorkunit(wu(1, 100), 0)
	a1 := srv.RequestWork()
	a2 := srv.RequestWork()
	if a1 == nil || a2 == nil {
		t.Fatal("quorum 2 should issue two copies")
	}
	srv.Complete(a1, OutcomeValid, 10) // one valid return; quorum 2 not met
	if srv.Stats.Completed != 0 {
		t.Fatal("completed under quorum 2 with one return")
	}
	// The second copy is abandoned: its timeout re-enqueues the workunit.
	engine.RunUntil(6 * sim.Day)
	if srv.Stats.TimedOut != 1 {
		t.Fatalf("timeouts = %d", srv.Stats.TimedOut)
	}
	if !srv.HasWork() {
		t.Fatal("workunit should need a copy before the switch")
	}
	// Past the switch the stored valid return suffices: the next work
	// request completes the workunit instead of handing out a copy.
	engine.RunUntil(21 * sim.Day)
	if srv.RequestWork() != nil {
		t.Fatal("no copy should be issued after the quorum drop")
	}
	if srv.Stats.Completed != 1 {
		t.Fatalf("quorum drop did not complete the workunit: %+v", srv.Stats)
	}
	if srv.Stats.Sent != 2 {
		t.Fatalf("sent = %d, want 2", srv.Stats.Sent)
	}
	if srv.HasWork() || srv.PendingCount() != 0 {
		t.Fatalf("counters stale after switch: HasWork=%v pending=%d", srv.HasWork(), srv.PendingCount())
	}
}

// TestTimeoutLateValidWasted: a copy times out, the replacement validates
// the workunit, and the original's late valid return is counted as Wasted
// with its CPU accounted — the §5.1 late-return path on the wheel.
func TestTimeoutLateValidWasted(t *testing.T) {
	engine, srv := newTestServer(q1Config())
	srv.AddWorkunit(wu(1, 100), 0)
	a := srv.RequestWork()
	engine.RunUntil(srv.Deadline() + sim.Day)
	if srv.Stats.TimedOut != 1 {
		t.Fatalf("timeouts = %d", srv.Stats.TimedOut)
	}
	b := srv.RequestWork()
	if b == nil {
		t.Fatal("no replacement after timeout")
	}
	srv.Complete(b, OutcomeValid, 100)
	srv.Complete(a, OutcomeValid, 900) // late return of the timed-out copy
	if srv.Stats.Wasted != 1 || srv.Stats.Completed != 1 {
		t.Fatalf("late valid return not wasted: %+v", srv.Stats)
	}
	if srv.Stats.WastedSeconds != 900 {
		t.Fatalf("late CPU not accounted as wasted: %v", srv.Stats.WastedSeconds)
	}
}

// TestInvalidReenqueueCounters: an invalid result re-enqueues the workunit
// and the O(1) counters stay exact through the round trip.
func TestInvalidReenqueueCounters(t *testing.T) {
	_, srv := newTestServer(q1Config())
	srv.AddWorkunit(wu(1, 100), 0)
	if srv.PendingCount() != 1 || !srv.HasWork() {
		t.Fatal("fresh workunit not pending")
	}
	a := srv.RequestWork()
	if srv.PendingCount() != 0 || srv.HasWork() {
		t.Fatal("issued workunit still pending")
	}
	srv.Complete(a, OutcomeInvalid, 50)
	if srv.PendingCount() != 1 || !srv.HasWork() {
		t.Fatal("invalid result did not re-enqueue")
	}
	b := srv.RequestWork()
	srv.Complete(b, OutcomeValid, 100)
	if srv.PendingCount() != 0 || srv.HasWork() {
		t.Fatal("counters nonzero after completion")
	}
	if srv.Stats.Completed != 1 || srv.Stats.Invalid != 1 {
		t.Fatalf("stats: %+v", srv.Stats)
	}
}

// TestDrainReentrantRequestWorkSingleChain: an OnComplete hook that calls
// RequestWork from inside a deadline drain arms the wheel reentrantly; the
// drain's tail must not fork a second permanent drain chain.
func TestDrainReentrantRequestWorkSingleChain(t *testing.T) {
	cfg := Config{InitialQuorum: 2, SteadyQuorum: 1, QuorumSwitchTime: 3 * sim.Day, Deadline: 5 * sim.Day}
	engine, srv := newTestServer(cfg)
	srv.AddWorkunit(wu(1, 100), 0)
	srv.AddWorkunit(wu(2, 100), 0)
	srv.OnComplete = func(*WUState) { srv.RequestWork() }
	a1 := srv.RequestWork() // WU1 copy 1
	a2 := srv.RequestWork() // WU1 copy 2
	if a1 == nil || a2 == nil || a1.WU != a2.WU {
		t.Fatal("expected two copies of WU1 under quorum 2")
	}
	srv.Complete(a1, OutcomeValid, 10) // one return banked; a2 stays out
	// At a2's deadline the drain lowers outstanding, the quorum (now 1)
	// completes WU1, and the hook's RequestWork hands out WU2 — arming the
	// wheel from inside the drain.
	engine.RunUntil(5 * sim.Day)
	if srv.Stats.Completed != 1 || srv.Stats.TimedOut != 1 {
		t.Fatalf("drain-time completion missing: %+v", srv.Stats)
	}
	if !srv.wheels[0].armed {
		t.Fatal("wheel disarmed with a copy outstanding")
	}
	// Exactly one drain event may be live: a forked chain would show up as
	// a second pending engine event.
	if engine.Pending() != 1 {
		t.Fatalf("pending events = %d, want 1 (single drain chain)", engine.Pending())
	}
}

// brute-force reference for the counters.
func scanCounts(s *Server) (pending, needy int) {
	for i := s.qHead; i < len(s.queue); i++ {
		st := s.queue[i]
		if st == nil || st.Completed {
			continue
		}
		pending++
		if st.validReturns+st.outstanding < s.quorum() {
			needy++
		}
	}
	return
}

func TestCountersMatchBruteForce(t *testing.T) {
	cfg := Config{InitialQuorum: 2, SteadyQuorum: 1, QuorumSwitchTime: 40 * sim.Day, Deadline: 6 * sim.Day}
	engine, srv := newTestServer(cfg)
	r := rng.New(123)
	var out []*Assignment
	nextID := int64(0)
	for step := 0; step < 4000; step++ {
		switch {
		case r.Bernoulli(0.3):
			srv.AddWorkunit(wu(nextID, 10), 0)
			nextID++
		case r.Bernoulli(0.5):
			if a := srv.RequestWork(); a != nil {
				out = append(out, a)
			}
		case len(out) > 0:
			i := int(r.Uint64() % uint64(len(out)))
			a := out[i]
			out = append(out[:i], out[i+1:]...)
			oc := OutcomeValid
			if r.Bernoulli(0.2) {
				oc = OutcomeInvalid
			}
			srv.Complete(a, oc, 1)
		}
		if r.Bernoulli(0.05) {
			engine.RunUntil(engine.Now() + sim.Day) // let deadlines fire
		}
		wantPending, wantNeedy := scanCounts(srv)
		if got := srv.PendingCount(); got != wantPending {
			t.Fatalf("step %d: PendingCount %d, scan %d", step, got, wantPending)
		}
		if got := srv.HasWork(); got != (wantNeedy > 0) {
			t.Fatalf("step %d: HasWork %v, scan needy %d", step, got, wantNeedy)
		}
	}
}
