// Package workunit implements the §4.2 workunit packaging algorithm: slicing
// the whole HCMD computation into pieces of work that each last approximately
// h hours on the reference processor.
//
// A workunit is defined for exactly one couple of proteins (a technical
// constraint: merging result files across couples would be needless work)
// and covers a contiguous range of starting positions with the full
// 21-rotation sweep. The number of starting positions packed into a workunit
// for couple (p1, p2) is
//
//	nsep = 1               if ⌊h / Mct(p1,p2)⌋ ≤ 1
//	nsep = Nsep(p1)        if ⌊h / Mct(p1,p2)⌋ ≥ Nsep(p1)
//	nsep = ⌊h / Mct(p1,p2)⌋ otherwise
//
// With the full 168-protein matrix this yields 1,364,476 workunits at
// h = 10 hours and 3,599,937 at h = 4 hours (Figure 4).
package workunit

import (
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/protein"
	"repro/internal/stats"
)

// Workunit is one piece of work: a couple and a range of starting positions.
type Workunit struct {
	ID         int64
	Receptor   int     // protein index p1 (the grid's fixed protein)
	Ligand     int     // protein index p2 (the mobile protein)
	ISepLo     int     // first starting position, 1-based inclusive
	ISepHi     int     // last starting position, inclusive
	RefSeconds float64 // predicted duration on the reference processor
}

// NSep returns the number of starting positions the workunit covers.
func (w Workunit) NSep() int { return w.ISepHi - w.ISepLo + 1 }

// Lines returns the expected number of result-file lines for the workunit
// (one per (isep, irot) pair), used by the §5.2 validation checks.
func (w Workunit) Lines() int { return w.NSep() * protein.NRotWorkunit }

// SliceCouple computes the per-workunit nsep for one couple, following the
// §4.2 clamped-quotient rule. hSeconds is the wanted duration and perIsep
// the couple's matrix entry (seconds per starting position).
func SliceCouple(hSeconds, perIsep float64, nsepTotal int) int {
	if hSeconds <= 0 || perIsep <= 0 || nsepTotal <= 0 {
		panic(fmt.Sprintf("workunit: invalid slice inputs h=%v ct=%v Nsep=%d", hSeconds, perIsep, nsepTotal))
	}
	q := int(math.Floor(hSeconds / perIsep))
	if q <= 1 {
		return 1
	}
	if q >= nsepTotal {
		return nsepTotal
	}
	return q
}

// CoupleCount returns the number of workunits one couple generates at the
// given slicing: ⌈Nsep / nsep⌉.
func CoupleCount(nsepTotal, nsep int) int {
	return (nsepTotal + nsep - 1) / nsep
}

// Plan lazily enumerates the workunits of a campaign without materializing
// them (the h = 4 catalog has 3.6 M entries; callers that only need counts
// and histograms should stream).
type Plan struct {
	DS      *protein.Dataset
	M       *costmodel.Matrix
	HHours  float64
	hSecs   float64
	couples [][2]int // explicit couple order; nil = all (p1, p2) pairs
}

// NewPlan creates a packaging plan for every ordered couple of the dataset
// at the wanted workunit duration (hours on the reference processor).
func NewPlan(ds *protein.Dataset, m *costmodel.Matrix, hHours float64) *Plan {
	if ds.Len() != m.N {
		panic("workunit: dataset/matrix size mismatch")
	}
	if hHours <= 0 {
		panic("workunit: wanted duration must be positive")
	}
	return &Plan{DS: ds, M: m, HHours: hHours, hSecs: hHours * 3600}
}

// WithCouples restricts the plan to an explicit ordered couple list
// (used by the campaign orchestration, which launches one receptor after
// another, and by scaled-down simulations).
func (p *Plan) WithCouples(couples [][2]int) *Plan {
	q := *p
	q.couples = couples
	return &q
}

// ForEachCouple invokes fn for every couple in plan order with the couple's
// slicing: receptor, ligand, per-isep cost, nsep per workunit.
func (p *Plan) ForEachCouple(fn func(rec, lig int, perIsep float64, nsep int)) {
	emit := func(i, j int) {
		perIsep := p.M.At(i, j)
		nsep := SliceCouple(p.hSecs, perIsep, p.DS.Proteins[i].Nsep)
		fn(i, j, perIsep, nsep)
	}
	if p.couples != nil {
		for _, c := range p.couples {
			emit(c[0], c[1])
		}
		return
	}
	for i := 0; i < p.DS.Len(); i++ {
		for j := 0; j < p.DS.Len(); j++ {
			emit(i, j)
		}
	}
}

// ForEach invokes fn for every workunit in plan order. Workunit IDs are
// assigned sequentially from 0. Returning false from fn stops the
// enumeration early.
func (p *Plan) ForEach(fn func(Workunit) bool) {
	var id int64
	stop := false
	p.ForEachCouple(func(rec, lig int, perIsep float64, nsep int) {
		if stop {
			return
		}
		total := p.DS.Proteins[rec].Nsep
		for lo := 1; lo <= total; lo += nsep {
			hi := lo + nsep - 1
			if hi > total {
				hi = total
			}
			w := Workunit{
				ID:       id,
				Receptor: rec, Ligand: lig,
				ISepLo: lo, ISepHi: hi,
				RefSeconds: float64(hi-lo+1) * perIsep,
			}
			id++
			if !fn(w) {
				stop = true
				return
			}
		}
	})
}

// Materialize builds the full workunit catalog. Use only for small plans
// (tests, examples); full-scale plans should stream with ForEach.
func (p *Plan) Materialize() []Workunit {
	var out []Workunit
	p.ForEach(func(w Workunit) bool {
		out = append(out, w)
		return true
	})
	return out
}

// Summary aggregates a plan: Figure 4's workunit count and duration
// histogram plus conservation checks.
type Summary struct {
	Count        int64
	TotalSeconds float64 // Σ predicted durations = formula (1) total
	MeanSeconds  float64
	Hist         *stats.Histogram // duration histogram, hours on the reference CPU
}

// Summarize streams the plan once and aggregates it. The histogram spans
// [0, histMaxHours) with one bin per histBinsPerHour⁻¹... bins of equal
// width; Figure 4 uses 0–14 h with half-hour bins.
func (p *Plan) Summarize(histMaxHours float64, bins int) Summary {
	s := Summary{Hist: stats.NewHistogram(0, histMaxHours, bins)}
	p.ForEachCouple(func(rec, lig int, perIsep float64, nsep int) {
		total := p.DS.Proteins[rec].Nsep
		nFull := total / nsep
		rem := total % nsep
		fullDur := float64(nsep) * perIsep
		s.Count += int64(nFull)
		s.TotalSeconds += float64(nFull) * fullDur
		s.Hist.AddN(fullDur/3600, nFull)
		if rem > 0 {
			remDur := float64(rem) * perIsep
			s.Count++
			s.TotalSeconds += remDur
			s.Hist.Add(remDur / 3600)
		}
	})
	if s.Count > 0 {
		s.MeanSeconds = s.TotalSeconds / float64(s.Count)
	}
	return s
}

// Count streams the plan and returns only the workunit count (Figure 4's
// headline numbers).
func (p *Plan) Count() int64 {
	var n int64
	p.ForEachCouple(func(rec, lig int, perIsep float64, nsep int) {
		n += int64(CoupleCount(p.DS.Proteins[rec].Nsep, nsep))
	})
	return n
}
