package workunit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/protein"
)

func smallPlan(t testing.TB, h float64) (*protein.Dataset, *Plan) {
	t.Helper()
	ds := protein.Generate(10, 42)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 7})
	return ds, NewPlan(ds, m, h)
}

func TestSliceCoupleRules(t *testing.T) {
	// q <= 1 → 1
	if got := SliceCouple(3600, 7200, 100); got != 1 {
		t.Fatalf("slow couple: nsep = %d, want 1", got)
	}
	// q >= Nsep → Nsep
	if got := SliceCouple(3600*100, 1, 50); got != 50 {
		t.Fatalf("fast couple: nsep = %d, want 50", got)
	}
	// middle: floor(h/ct)
	if got := SliceCouple(36000, 671, 5000); got != 53 {
		t.Fatalf("typical couple: nsep = %d, want 53", got)
	}
}

func TestSliceCouplePanics(t *testing.T) {
	for i, f := range []func(){
		func() { SliceCouple(0, 1, 1) },
		func() { SliceCouple(1, 0, 1) },
		func() { SliceCouple(1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCoupleCount(t *testing.T) {
	cases := []struct{ total, nsep, want int }{
		{100, 10, 10}, {101, 10, 11}, {9, 10, 1}, {10, 10, 1}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := CoupleCount(c.total, c.nsep); got != c.want {
			t.Errorf("CoupleCount(%d,%d) = %d, want %d", c.total, c.nsep, got, c.want)
		}
	}
}

// TestConservation: for every couple, the union of its workunits covers
// [1, Nsep] exactly once — no gaps, no overlaps.
func TestConservation(t *testing.T) {
	ds, plan := smallPlan(t, 10)
	covered := make(map[[2]int][]bool)
	plan.ForEach(func(w Workunit) bool {
		key := [2]int{w.Receptor, w.Ligand}
		if covered[key] == nil {
			covered[key] = make([]bool, ds.Proteins[w.Receptor].Nsep+1)
		}
		for i := w.ISepLo; i <= w.ISepHi; i++ {
			if covered[key][i] {
				t.Fatalf("couple %v: isep %d covered twice", key, i)
			}
			covered[key][i] = true
		}
		return true
	})
	if len(covered) != ds.Len()*ds.Len() {
		t.Fatalf("covered %d couples, want %d", len(covered), ds.Len()*ds.Len())
	}
	for key, seen := range covered {
		for i := 1; i < len(seen); i++ {
			if !seen[i] {
				t.Fatalf("couple %v: isep %d never covered", key, i)
			}
		}
	}
}

// TestConservationProperty uses testing/quick over random h values.
func TestConservationProperty(t *testing.T) {
	ds := protein.Generate(4, 3)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 9})
	f := func(hRaw uint16) bool {
		h := 0.25 + float64(hRaw%200)/10 // 0.25 .. 20.15 hours
		plan := NewPlan(ds, m, h)
		sum := make(map[[2]int]int)
		ok := true
		plan.ForEach(func(w Workunit) bool {
			if w.ISepLo < 1 || w.ISepHi > ds.Proteins[w.Receptor].Nsep || w.ISepLo > w.ISepHi {
				ok = false
				return false
			}
			sum[[2]int{w.Receptor, w.Ligand}] += w.NSep()
			return true
		})
		if !ok {
			return false
		}
		for key, got := range sum {
			if got != ds.Proteins[key[0]].Nsep {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizeMatchesForEach(t *testing.T) {
	_, plan := smallPlan(t, 6)
	sum := plan.Summarize(24, 48)
	var count int64
	var total float64
	plan.ForEach(func(w Workunit) bool {
		count++
		total += w.RefSeconds
		return true
	})
	if sum.Count != count {
		t.Fatalf("Summarize count %d, ForEach count %d", sum.Count, count)
	}
	if math.Abs(sum.TotalSeconds-total) > 1e-6*total {
		t.Fatalf("Summarize total %v, ForEach total %v", sum.TotalSeconds, total)
	}
	if got := plan.Count(); got != count {
		t.Fatalf("Count() = %d, want %d", got, count)
	}
	if int64(sum.Hist.Total()) != count {
		t.Fatalf("histogram mass %d, want %d", sum.Hist.Total(), count)
	}
}

func TestTotalWorkConserved(t *testing.T) {
	// Σ workunit durations must equal the formula-(1) total regardless of h.
	ds, _ := smallPlan(t, 1)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 7})
	want := m.TotalWork(ds)
	for _, h := range []float64{0.5, 4, 10, 100} {
		sum := NewPlan(ds, m, h).Summarize(1000, 10)
		if math.Abs(sum.TotalSeconds-want)/want > 1e-9 {
			t.Fatalf("h=%v: packaged total %v, matrix total %v", h, sum.TotalSeconds, want)
		}
	}
}

func TestSmallerHMoreWorkunits(t *testing.T) {
	_, p10 := smallPlan(t, 10)
	_, p4 := smallPlan(t, 4)
	if p4.Count() <= p10.Count() {
		t.Fatalf("h=4 gives %d WUs, h=10 gives %d; smaller h must give more", p4.Count(), p10.Count())
	}
}

func TestWorkunitDurationBounded(t *testing.T) {
	// No workunit may exceed the wanted duration unless it is a single
	// starting position (the indivisible unit).
	_, plan := smallPlan(t, 5)
	plan.ForEach(func(w Workunit) bool {
		if w.RefSeconds > 5*3600 && w.NSep() > 1 {
			t.Fatalf("workunit %d: %v s with %d positions exceeds h", w.ID, w.RefSeconds, w.NSep())
		}
		return true
	})
}

func TestWithCouples(t *testing.T) {
	ds, plan := smallPlan(t, 8)
	sub := plan.WithCouples([][2]int{{0, 1}, {2, 3}})
	var seen [][2]int
	sub.ForEach(func(w Workunit) bool {
		key := [2]int{w.Receptor, w.Ligand}
		if len(seen) == 0 || seen[len(seen)-1] != key {
			seen = append(seen, key)
		}
		return true
	})
	if len(seen) != 2 || seen[0] != [2]int{0, 1} || seen[1] != [2]int{2, 3} {
		t.Fatalf("couple order = %v", seen)
	}
	_ = ds
}

func TestForEachEarlyStop(t *testing.T) {
	_, plan := smallPlan(t, 10)
	n := 0
	plan.ForEach(func(w Workunit) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop did not hold: %d", n)
	}
}

func TestIDsSequential(t *testing.T) {
	_, plan := smallPlan(t, 10)
	var next int64
	plan.ForEach(func(w Workunit) bool {
		if w.ID != next {
			t.Fatalf("ID %d, want %d", w.ID, next)
		}
		next++
		return true
	})
}

func TestLines(t *testing.T) {
	w := Workunit{ISepLo: 3, ISepHi: 7}
	if w.NSep() != 5 {
		t.Fatalf("NSep = %d", w.NSep())
	}
	if w.Lines() != 5*protein.NRotWorkunit {
		t.Fatalf("Lines = %d", w.Lines())
	}
}

func TestNewPlanPanics(t *testing.T) {
	ds := protein.Generate(3, 1)
	m := costmodel.NewMatrix(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected size-mismatch panic")
			}
		}()
		NewPlan(ds, m, 1)
	}()
	m2 := costmodel.NewMatrix(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected bad-h panic")
			}
		}()
		NewPlan(ds, m2, 0)
	}()
}

func BenchmarkSummarizeFullHCMD(b *testing.B) {
	ds := protein.HCMD168()
	m := costmodel.SynthesizeHCMD(ds)
	plan := NewPlan(ds, m, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = plan.Summarize(14, 28)
	}
}
