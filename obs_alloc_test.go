// Zero-cost gate for the observability plane: a nil-probe campaign must
// allocate exactly what the checked-in BENCH_campaign.json baseline row
// recorded before the plane existed. Allocations are deterministic for a
// deterministic simulation, so any growth here is the plane leaking into
// the disabled path.
package repro_test

import (
	"runtime"
	"testing"

	"repro/internal/experiment"
	"repro/internal/project"
)

func TestNilProbeAllocNeutrality(t *testing.T) {
	if testing.Short() {
		t.Skip("full CI-scale campaign")
	}
	f, err := experiment.ReadBenchFile("BENCH_campaign.json")
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	base, ok := f.LatestRun("BenchmarkCampaignCI")
	if !ok {
		t.Skip("no BenchmarkCampaignCI baseline row recorded")
	}

	cfg := system().CampaignConfig(ciBenchScale, 0) // the benchmark's exact config, Probe nil
	measure := func() int64 {
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		rep := project.New(cfg).Run()
		runtime.ReadMemStats(&ms1)
		if !rep.Completed {
			t.Fatal("campaign did not complete")
		}
		return int64(ms1.Mallocs - ms0.Mallocs)
	}
	// Minimum of three runs: the campaign's own allocations are
	// deterministic, so the floor is the true count with any background
	// runtime allocations (GC workers, timers) filtered out.
	best := measure()
	for i := 0; i < 2; i++ {
		if m := measure(); m < best {
			best = m
		}
	}
	if best > base.AllocsPerOp {
		t.Errorf("nil-probe campaign allocates %d, baseline %q recorded %d: the disabled plane added %d allocations",
			best, base.Label, base.AllocsPerOp, best-base.AllocsPerOp)
	}
}
